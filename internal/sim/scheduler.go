package sim

import "container/heap"

// Event is a scheduled callback. Events are created through Scheduler.At /
// Scheduler.After and may be cancelled; a cancelled event is skipped when its
// time comes. The zero Event is not valid.
type Event struct {
	at        Time
	seq       uint64 // creation order; breaks ties deterministically (FIFO)
	fn        func()
	index     int // heap index, -1 once popped
	cancelled bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a discrete-event scheduler: a priority queue of timestamped
// callbacks executed in (time, insertion-order) order while a virtual clock
// advances. It is not safe for concurrent use; a simulation owns exactly one
// scheduler and runs on one goroutine.
type Scheduler struct {
	heap    eventHeap
	now     Time
	seq     uint64
	stopped bool
	// Executed counts events that have been dispatched; useful for
	// progress accounting and performance reporting.
	Executed uint64
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{heap: make(eventHeap, 0, 1024)}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending (non-cancelled) events, counting
// cancelled-but-unpopped events too; it is intended for tests and stats.
func (s *Scheduler) Len() int { return len(s.heap) }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it indicates a logic error in the calling model, and silently reordering
// events would destroy causality.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel marks the event so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op. The event is removed from the queue
// immediately to keep the heap small in timer-heavy workloads.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 {
		heap.Remove(&s.heap, e.index)
	}
}

// Reschedule cancels e and returns a fresh event running the same callback
// at the new time. It is a convenience for restartable timers.
func (s *Scheduler) Reschedule(e *Event, t Time) *Event {
	fn := e.fn
	s.Cancel(e)
	return s.At(t, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.at
		s.Executed++
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty or the next
// event lies strictly beyond the horizon; the clock is then advanced to the
// horizon. Stop aborts the loop early.
func (s *Scheduler) RunUntil(horizon Time) {
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		next := s.heap[0]
		if next.cancelled {
			heap.Pop(&s.heap)
			continue
		}
		if next.at > horizon {
			break
		}
		heap.Pop(&s.heap)
		s.now = next.at
		s.Executed++
		next.fn()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Run executes every pending event (including ones scheduled while running)
// until the queue empties or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// Stop makes the innermost Run/RunUntil return after the current event.
func (s *Scheduler) Stop() { s.stopped = true }
