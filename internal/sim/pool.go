package sim

// Pool is a minimal free list for simulation objects that churn on the hot
// path (MAC jobs, PHY arrivals/receptions, response state). Get returns a
// zeroed *T — recycled or freshly allocated — and Put zeroes the object
// before storing it, so pooled structs never pin frames or packets for the
// garbage collector and a recycled object can never leak state into its
// next life. Not safe for concurrent use, like everything else in sim.
//
// The scheduler's Event free list intentionally does not use Pool: freed
// events carry a sentinel sequence number (not the zero value) to make
// stale TaskHandles provably invalid.
type Pool[T any] struct {
	free []*T
}

// Get returns a zeroed object, reusing a recycled one when available.
func (p *Pool[T]) Get() *T {
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return v
	}
	return new(T)
}

// Put zeroes the object and stores it for reuse. The caller must not
// retain the pointer.
func (p *Pool[T]) Put(v *T) {
	var zero T
	*v = zero
	p.free = append(p.free, v)
}

// Len reports the number of pooled objects (tests/stats).
func (p *Pool[T]) Len() int { return len(p.free) }
