// Package sim provides the deterministic discrete-event simulation kernel
// used by every other subsystem: a virtual clock, an event scheduler with
// FIFO tie-breaking, and seeded random-number streams.
//
// The kernel is single-threaded by design: a simulation run is a pure
// function of its configuration (including the seed), which makes runs
// reproducible bit-for-bit. Parallelism belongs one level up, where
// independent runs are dispatched onto worker goroutines.
package sim

import "fmt"

// Time is a point in virtual time, measured in nanoseconds from the start of
// the simulation. Integer nanoseconds (rather than float64 seconds) keep
// event ordering exact and platform-independent.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Duration.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// Micros converts a floating-point number of microseconds to a Duration.
func Micros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds reports the time as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// String formats the duration as seconds with microsecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.6fs", d.Seconds()) }
