package mobility

import (
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/sim"
)

func TestStatic(t *testing.T) {
	s := &Static{P: geo.Point{X: 5, Y: 7}}
	if s.PositionAt(0) != (geo.Point{X: 5, Y: 7}) {
		t.Fatal("static moved")
	}
	if s.PositionAt(100*sim.Time(sim.Second)) != (geo.Point{X: 5, Y: 7}) {
		t.Fatal("static moved over time")
	}
}

func TestRandomWaypointStaysInField(t *testing.T) {
	field := geo.Field(1000, 1000)
	m := NewRandomWaypoint(field, 0, 20, sim.Second, sim.NewRNG(42))
	for s := 0; s <= 2000; s++ {
		p := m.PositionAt(sim.Time(s) * sim.Time(sim.Second) / 10)
		if !field.Contains(p) {
			t.Fatalf("node left field at t=%ds: %v", s, p)
		}
	}
}

func TestRandomWaypointSpeedBound(t *testing.T) {
	field := geo.Field(1000, 1000)
	maxSpeed := 10.0
	m := NewRandomWaypoint(field, 0, maxSpeed, 0, sim.NewRNG(7))
	prev := m.PositionAt(0)
	step := sim.Seconds(0.1)
	for i := 1; i < 20000; i++ {
		now := sim.Time(i) * sim.Time(step)
		p := m.PositionAt(now)
		d := prev.DistanceTo(p)
		// Allow tiny numerical slack.
		if d > maxSpeed*step.Seconds()*1.0001 {
			t.Fatalf("speed exceeded max: moved %.3f m in %.1fs at t=%v", d, step.Seconds(), now)
		}
		prev = p
	}
}

func TestRandomWaypointDeterminism(t *testing.T) {
	field := geo.Field(500, 500)
	m1 := NewRandomWaypoint(field, 0, 5, sim.Second, sim.NewRNG(99))
	m2 := NewRandomWaypoint(field, 0, 5, sim.Second, sim.NewRNG(99))
	for s := 0; s < 500; s++ {
		tm := sim.Time(s) * sim.Time(sim.Second)
		if m1.PositionAt(tm) != m2.PositionAt(tm) {
			t.Fatalf("same seed diverged at t=%v", tm)
		}
	}
}

func TestRandomWaypointActuallyMoves(t *testing.T) {
	field := geo.Field(1000, 1000)
	m := NewRandomWaypoint(field, 1, 20, 0, sim.NewRNG(3))
	start := m.PositionAt(0)
	moved := false
	for s := 1; s < 100; s++ {
		if m.PositionAt(sim.Time(s)*sim.Time(sim.Second)) != start {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("node never moved in 100s")
	}
}

func TestRandomWaypointPause(t *testing.T) {
	// With an enormous pause, the node reaches its first destination and
	// then stays put for the rest of a short observation window.
	field := geo.Field(100, 100)
	m := NewRandomWaypoint(field, 5, 5, sim.Seconds(1e6), sim.NewRNG(11))
	// Max leg length is the field diagonal ~141.4 m at 5 m/s -> < 29 s.
	p30 := m.PositionAt(sim.Time(30) * sim.Time(sim.Second))
	for s := 31; s < 100; s++ {
		if m.PositionAt(sim.Time(s)*sim.Time(sim.Second)) != p30 {
			t.Fatal("node moved during pause")
		}
	}
}

func TestRandomWaypointZeroMaxSpeedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRandomWaypoint(geo.Field(10, 10), 0, 0, 0, sim.NewRNG(1))
}

func TestRandomWaypointMinAboveMax(t *testing.T) {
	// minSpeed greater than maxSpeed is clamped, not fatal.
	m := NewRandomWaypoint(geo.Field(100, 100), 50, 10, 0, sim.NewRNG(1))
	p := m.PositionAt(sim.Time(sim.Second))
	if !geo.Field(100, 100).Contains(p) {
		t.Fatalf("position out of field: %v", p)
	}
}

func TestRandomWaypointLongHorizon(t *testing.T) {
	// Jumping far ahead in one query must fast-forward through many legs
	// without getting stuck.
	m := NewRandomWaypoint(geo.Field(1000, 1000), 0, 2, sim.Second, sim.NewRNG(5))
	p := m.PositionAt(sim.Time(100000) * sim.Time(sim.Second))
	if !geo.Field(1000, 1000).Contains(p) {
		t.Fatalf("position out of field after long jump: %v", p)
	}
}

func BenchmarkRandomWaypointQuery(b *testing.B) {
	m := NewRandomWaypoint(geo.Field(1000, 1000), 0, 20, sim.Second, sim.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PositionAt(sim.Time(i) * sim.Time(sim.Millisecond))
	}
}
