// Package mobility implements node movement models. The paper's evaluation
// uses the random waypoint model: each node repeatedly picks a uniform random
// destination in the field and a uniform random speed in (0, MAXSPEED], moves
// there in a straight line, pauses, and repeats.
//
// Models are queried lazily with a monotonically non-decreasing clock (the
// discrete-event loop guarantees this), so waypoint legs are generated on
// demand from a per-node random stream — deterministic for a given seed.
package mobility

import (
	"mtsim/internal/geo"
	"mtsim/internal/sim"
)

// Model yields a node's position over time. PositionAt must be called with
// non-decreasing times; implementations may advance internal state.
type Model interface {
	PositionAt(t sim.Time) geo.Point
}

// SpeedBounded is implemented by models that can bound how fast they move.
// The PHY layer uses the bound to decide how stale a cached position
// snapshot in its spatial index may become before it must be refreshed:
// 0 means stationary (never refresh), a positive bound allows coarse
// epoch-based refresh. Models without the interface are treated as
// unbounded, which is always safe but forces per-transmission refresh.
type SpeedBounded interface {
	// MaxSpeed returns an upper bound on the model's speed in m/s.
	MaxSpeed() float64
}

// Static is a Model that never moves. Useful for unit tests and fixed
// topologies (chains, grids).
type Static struct {
	P geo.Point
}

// PositionAt implements Model.
func (s *Static) PositionAt(sim.Time) geo.Point { return s.P }

// MaxSpeed implements SpeedBounded: a static node never moves.
func (s *Static) MaxSpeed() float64 { return 0 }

// Waypoint is one leg of a random-waypoint trajectory.
type waypointLeg struct {
	from, to  geo.Point
	start     sim.Time // movement start
	arrive    sim.Time // arrival at `to`
	pauseTill sim.Time // end of the pause after arrival
}

// RandomWaypoint implements the random waypoint model within a rectangular
// field. MinSpeed > 0 avoids the well-known "stuck node" pathology of
// speed→0 draws; the paper draws uniformly from (0, MAXSPEED] so we use a
// small positive floor by default.
type RandomWaypoint struct {
	field    geo.Rect
	minSpeed float64 // m/s
	maxSpeed float64 // m/s
	pause    sim.Duration
	rng      *sim.RNG
	leg      waypointLeg
}

// NewRandomWaypoint creates a random-waypoint model. The initial position is
// drawn uniformly from the field. maxSpeed must be positive; minSpeed is
// clamped to a small positive value.
func NewRandomWaypoint(field geo.Rect, minSpeed, maxSpeed float64, pause sim.Duration, rng *sim.RNG) *RandomWaypoint {
	if maxSpeed <= 0 {
		panic("mobility: non-positive max speed")
	}
	const floor = 0.01 // m/s; avoids quasi-infinite legs
	if minSpeed < floor {
		minSpeed = floor
	}
	if minSpeed > maxSpeed {
		minSpeed = maxSpeed
	}
	m := &RandomWaypoint{
		field:    field,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		pause:    pause,
		rng:      rng,
	}
	start := m.randomPoint()
	m.leg = waypointLeg{from: start, to: start, start: 0, arrive: 0, pauseTill: 0}
	m.nextLeg(0)
	return m
}

// MaxSpeed implements SpeedBounded.
func (m *RandomWaypoint) MaxSpeed() float64 { return m.maxSpeed }

func (m *RandomWaypoint) randomPoint() geo.Point {
	return geo.Point{
		X: m.rng.Uniform(m.field.MinX, m.field.MaxX),
		Y: m.rng.Uniform(m.field.MinY, m.field.MaxY),
	}
}

// nextLeg draws the next destination and speed, starting movement at `at`.
func (m *RandomWaypoint) nextLeg(at sim.Time) {
	from := m.leg.to
	to := m.randomPoint()
	speed := m.rng.Uniform(m.minSpeed, m.maxSpeed)
	dist := from.DistanceTo(to)
	travel := sim.Seconds(dist / speed)
	m.leg = waypointLeg{
		from:      from,
		to:        to,
		start:     at,
		arrive:    at.Add(travel),
		pauseTill: at.Add(travel).Add(m.pause),
	}
}

// PositionAt implements Model. Times must be non-decreasing across calls.
func (m *RandomWaypoint) PositionAt(t sim.Time) geo.Point {
	for t >= m.leg.pauseTill {
		m.nextLeg(m.leg.pauseTill)
	}
	if t >= m.leg.arrive {
		return m.leg.to // pausing at destination
	}
	span := m.leg.arrive.Sub(m.leg.start)
	if span <= 0 {
		return m.leg.to
	}
	f := float64(t.Sub(m.leg.start)) / float64(span)
	return m.leg.from.Lerp(m.leg.to, f)
}
