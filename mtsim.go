// Package mtsim is a discrete-event simulator for TCP over multipath
// routing in mobile ad hoc wireless networks. It reproduces, from scratch
// and in pure Go, the system evaluated in:
//
//	Zhi Li and Yu-Kwong Kwok, "A New Multipath Routing Approach to
//	Enhancing TCP Security in Ad Hoc Wireless Networks",
//	Proc. International Conference on Parallel Processing Workshops
//	(ICPPW 2005), pp. 372–379.
//
// The package bundles a deterministic event-driven simulation kernel, a
// unit-disc radio channel with an IEEE 802.11b DCF MAC, random-waypoint
// mobility, a packet-granularity TCP Reno implementation, three routing
// protocols — DSR and AODV as baselines and MTS (Multipath TCP Security,
// the paper's contribution) — plus the eavesdropper instrumentation and
// metrics from the paper's evaluation (interception ratio, participating
// nodes, relay-distribution σ, delay, throughput, delivery rate, control
// overhead).
//
// # Quick start
//
//	cfg := mtsim.DefaultConfig()     // the paper's §IV-A setup
//	cfg.Protocol = "MTS"
//	cfg.MaxSpeed = 10                // m/s
//	cfg.Seed = 42
//	m, err := mtsim.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("interception ratio: %.3f\n", m.InterceptionRatio)
//
// Full sweeps (the paper's Figs. 5–11) are driven by Sweep / PaperSweep;
// see cmd/experiments for the command-line harness and EXPERIMENTS.md for
// the recorded paper-vs-measured comparison.
package mtsim

import (
	"io"

	"mtsim/internal/adversary"
	"mtsim/internal/countermeasure"
	"mtsim/internal/experiment"
	"mtsim/internal/geo"
	"mtsim/internal/metrics"
	"mtsim/internal/packet"
	"mtsim/internal/runcache"
	"mtsim/internal/scenario"
	"mtsim/internal/sim"
	"mtsim/internal/trace"
)

// NodeID identifies a node in a scenario (0 … Nodes-1).
type NodeID = packet.NodeID

// Config declares a single simulation run (nodes, field, mobility,
// protocol, flows, eavesdropper, stack parameters). Obtain a baseline with
// DefaultConfig and adjust.
type Config = scenario.Config

// FlowSpec names one TCP connection inside a Config.
type FlowSpec = scenario.FlowSpec

// Metrics is the complete result of one run: the paper's security metrics
// (Figs. 5–7, Table I) and TCP metrics (Figs. 8–11) plus diagnostics.
type Metrics = metrics.RunMetrics

// RelayRow is one participating node's β/γ entry (Table I).
type RelayRow = metrics.RelayRow

// AdversarySpec declares a threat model for Config.Adversary: a coalition
// of k colluding eavesdroppers, a mobile eavesdropper, or
// blackhole/grayhole dropping relays. The zero Spec is the paper's single
// random eavesdropper.
type AdversarySpec = adversary.Spec

// AdversaryMember is one vantage point's interception accounting inside
// Metrics.AdversaryMembers.
type AdversaryMember = metrics.AdversaryMember

// Adversary model names for AdversarySpec.Model.
const (
	AdversaryEavesdropper = adversary.ModelEavesdropper
	AdversaryCoalition    = adversary.ModelCoalition
	AdversaryMobile       = adversary.ModelMobile
	AdversaryBlackhole    = adversary.ModelBlackhole
	AdversaryGrayhole     = adversary.ModelGrayhole
	AdversaryAdaptive     = adversary.ModelAdaptive
	AdversaryWormhole     = adversary.ModelWormhole
	AdversaryRushing      = adversary.ModelRushing
)

// AdversaryModels lists every selectable adversary model.
func AdversaryModels() []string { return adversary.Models() }

// CountermeasureSpec declares a defence for Config.Countermeasure: data
// shuffling at the traffic sources (with per-packet dispersal across
// MTS's disjoint paths), adversary-aware MTS path selection, or both.
// The zero Spec is the paper's undefended baseline.
type CountermeasureSpec = countermeasure.Spec

// Countermeasure model names for CountermeasureSpec.Model.
const (
	CountermeasureNone         = countermeasure.ModelNone
	CountermeasureShuffle      = countermeasure.ModelShuffle
	CountermeasureAware        = countermeasure.ModelAware
	CountermeasureShuffleAware = countermeasure.ModelShuffleAware
	CountermeasureTrust        = countermeasure.ModelTrust
)

// CountermeasureModels lists every selectable countermeasure model.
func CountermeasureModels() []string { return countermeasure.Models() }

// Sweep declares a protocol × speed × repetition experiment grid.
type Sweep = experiment.Sweep

// Result aggregates all runs of a sweep.
type Result = experiment.Result

// CellKey identifies one (protocol, speed, adversary-label) aggregation
// cell of a Result; the Adversary field is blank for sweeps without an
// adversary axis.
type CellKey = experiment.CellKey

// Figure describes one of the paper's evaluation figures.
type Figure = experiment.Figure

// RetryPolicy bounds the attempts the sweep engine makes on a failed
// cell (Sweep.Retry). Retries re-run the identical configuration and
// seed — the simulator's determinism makes a retry byte-identical to a
// never-failed run — under deterministic capped-exponential backoff.
type RetryPolicy = experiment.RetryPolicy

// Watchdog is the per-run deadline pair (Sweep.Watchdog): a
// simulated-event budget catching livelocked runs and a wall-clock
// budget catching hung ones. A tripped watchdog kills the run cleanly
// and attributes the timeout.
type Watchdog = experiment.Watchdog

// FailedCell is one run of a KeepGoing sweep that failed every attempt,
// recorded in Result.Failed with its full attempt history.
type FailedCell = experiment.FailedCell

// Journal is the sweep engine's append-only JSONL attempt log
// (Sweep.Journal): one record per attempt of every simulated cell,
// successes and cache hits included.
type Journal = experiment.Journal

// AttemptRecord is one line of a Journal.
type AttemptRecord = experiment.AttemptRecord

// Executor is the engine's per-cell fault-tolerance machinery (panic
// isolation, deterministic retries, run watchdog, attempt journal),
// reusable outside Sweep.Run — the sweep fabric's workers
// (internal/sweepfabric, cmd/sweepd) drive leased cells through it.
type Executor = experiment.Executor

// CellJob is one sweep grid cell as the fabric ships it around: the
// aggregation key plus the complete configuration. Sweep.Jobs
// enumerates them in the engine's dispatch order.
type CellJob = experiment.CellJob

// SweepCache is the engine-facing cache seam (Sweep.Cache): result
// lookup before dispatch, persistence after completion. *RunCache
// implements it; so do the sweep fabric's remote and tiered caches.
type SweepCache = experiment.Cache

// Coevolution is the iterated best-response harness closing the
// attacker–defender loop: alternate attacker/defender moves over
// cache-backed sweeps until the strategy pair reaches a fixed point of
// the empirical payoff matrix.
type Coevolution = experiment.Coevolution

// CoevolutionResult is a completed co-evolution game: the equilibrium,
// every payoff cell evaluated along the way, and the move history.
type CoevolutionResult = experiment.CoevolutionResult

// Payoff is one attacker × defender payoff cell (delivery, intercepted
// contiguity, throughput, and the scalar defender score).
type Payoff = experiment.Payoff

// NewJournal wraps an existing writer as an attempt journal.
func NewJournal(w io.Writer) *Journal { return experiment.NewJournal(w) }

// OpenJournal opens (creating if needed) an append-mode journal file, so
// repeated sweeps accumulate one flake history.
func OpenJournal(path string) (*Journal, error) { return experiment.OpenJournal(path) }

// Scenario is a built simulation; use Build for mid-run inspection and
// custom instrumentation, or Run for the common path.
type Scenario = scenario.Scenario

// Sample is one point of a throughput-over-time series (Scenario.RunSampled).
type Sample = scenario.Sample

// Rect is an axis-aligned field rectangle in metres (Config.Field).
type Rect = geo.Rect

// Field returns the w×h field anchored at the origin, the usual simulation
// field shape.
func Field(w, h float64) Rect { return geo.Field(w, h) }

// Time is virtual time in nanoseconds; Duration a span thereof.
type Time = sim.Time

// Duration is a span of virtual time in nanoseconds.
type Duration = sim.Duration

// Common virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Seconds converts floating-point seconds to a Duration.
func Seconds(s float64) Duration { return sim.Seconds(s) }

// DefaultConfig returns the paper's §IV-A simulation setup: 50 nodes on a
// 1000 m × 1000 m field, random waypoint with 1 s pause, 250 m radio range,
// IEEE 802.11b, one FTP/TCP-Reno flow, a random eavesdropper, 200 s.
func DefaultConfig() Config { return scenario.DefaultConfig() }

// Protocols lists the paper's routing protocols: DSR, AODV, MTS.
func Protocols() []string { return scenario.Protocols() }

// AllProtocols additionally includes the §II related-work baselines:
// SMR (split multipath) and SMR-BACKUP (Lim's backup-path scheme).
func AllProtocols() []string { return scenario.AllProtocols() }

// Run builds and executes one simulation, returning its metrics.
func Run(cfg Config) (*Metrics, error) { return scenario.RunOne(cfg) }

// Build wires a simulation without running it, for callers that want to
// attach instrumentation or advance virtual time manually.
func Build(cfg Config) (*Scenario, error) { return scenario.Build(cfg) }

// PaperSweep returns the paper's evaluation grid (DSR/AODV/MTS ×
// {2,5,10,15,20} m/s × 5 repetitions) over the given base configuration.
func PaperSweep(base Config) Sweep { return experiment.PaperSweep(base) }

// RunCache is a content-addressed on-disk cache of run results, keyed by a
// canonical hash of the full Config (seed included) plus a code-version
// salt. Attach one to Sweep.Cache and repeated sweeps skip every identical
// cell; an interrupted sweep resumes from its completed runs.
type RunCache = runcache.Store

// OpenRunCache creates (if needed) and opens a run cache directory.
func OpenRunCache(dir string) (*RunCache, error) { return runcache.Open(dir) }

// RunCacheKey returns the content address a configuration is cached under.
func RunCacheKey(cfg Config) (string, error) { return runcache.Key(cfg) }

// CacheHealth is a RunCache's degradation counters (corrupt entries
// quarantined, erroring reads degraded to misses, stale-version misses).
// All zeros is a healthy cache.
type CacheHealth = runcache.Health

// RunContext reuses the expensive simulation scaffolding (event scheduler,
// radio channel, spatial grid, pools) across consecutive runs on one
// goroutine; results are bit-identical to fresh Builds. Sweep workers use
// one per goroutine automatically — reach for it directly when running
// many configurations in your own loop.
type RunContext = scenario.Context

// NewRunContext returns an empty reusable simulation context.
func NewRunContext() *RunContext { return scenario.NewContext() }

// PaperFigures returns the definitions of the paper's Figs. 5–11: metric
// extractors, units, and the qualitative shape the paper reports.
func PaperFigures() []Figure { return experiment.PaperFigures() }

// AdversaryFigures returns the extension figures for adversary sweeps
// (coalition interception ratio, union Pe, adversarial drops, delivery).
func AdversaryFigures() []Figure { return experiment.AdversaryFigures() }

// CountermeasureFigures returns the defender-side extension figures
// (intercepted stream contiguity, reassemblable runs, shuffle accounting)
// for defender-vs-attacker grids (Sweep.Countermeasures).
func CountermeasureFigures() []Figure { return experiment.CountermeasureFigures() }

// FigureByID looks up a figure definition ("fig5" … "fig11").
func FigureByID(id string) (Figure, bool) { return experiment.FigureByID(id) }

// Table1 runs the paper's Table I demonstration (per-node relay counts and
// their normalization for one DSR scenario) and renders it.
func Table1(base Config, seed int64) (string, error) { return experiment.Table1(base, seed) }

// RenderTable1 formats an existing run's relay table in Table I layout.
func RenderTable1(m *Metrics) string { return experiment.RenderTable1(m) }

// AttachTrace mirrors every MAC-level send and receive of the scenario's
// nodes into w as ns-2-style trace lines. Call between Build and Run.
func AttachTrace(s *Scenario, w io.Writer) {
	tr := trace.New(w, s.Sched)
	for _, n := range s.Nodes {
		tr.AttachNode(n)
	}
}
