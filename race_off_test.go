//go:build !race

package mtsim

// raceEnabled reports whether the race detector instruments this build;
// see race_on_test.go for the counterpart.
const raceEnabled = false
