package mtsim

// Documentation enforcement: every internal package must carry a
// package-level doc comment stating its role (the godoc pass stays
// true), and every relative link or anchor in the repository's markdown
// must resolve (docs rot fails the build). Both checks run in the
// ordinary `go test ./...` lane, so CI needs no extra tooling.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"unicode"
)

// TestAllPackagesDocumented walks internal/ and fails for any package
// whose files all lack a package doc comment. The doc must be more than
// a restatement of the import path: require at least one full sentence
// (~40 characters).
func TestAllPackagesDocumented(t *testing.T) {
	err := filepath.WalkDir("internal", func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		fset := token.NewFileSet()
		pkgs, perr := parser.ParseDir(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
		if perr != nil {
			t.Errorf("%s: %v", path, perr)
			return nil
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			doc := ""
			for _, f := range pkg.Files {
				if f.Doc != nil && len(f.Doc.Text()) > len(doc) {
					doc = f.Doc.Text()
				}
			}
			if len(strings.TrimSpace(doc)) < 40 {
				t.Errorf("package %s (%s) has no package-level doc comment; state its role and invariants", name, path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mdFiles returns every markdown file the link check covers: the repo
// root, docs/, and any markdown shipped beside examples.
func mdFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md", "examples/*/*.md"} {
		matches, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matches...)
	}
	if len(files) < 5 {
		t.Fatalf("markdown glob found only %v — link check is not covering the repo", files)
	}
	return files
}

// githubSlug reduces a heading to its GitHub anchor: lowercase, spaces
// to hyphens, punctuation dropped (letters, digits, hyphens and
// underscores survive, including non-ASCII letters).
func githubSlug(heading string) string {
	heading = strings.TrimSpace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ':
			b.WriteRune('-')
		case r == '-' || r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		}
	}
	return b.String()
}

var (
	mdLinkRe    = regexp.MustCompile(`\]\(([^()\s]+)\)`)
	mdHeadingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)
	mdCodeRe    = regexp.MustCompile("(?s)```.*?```|`[^`\n]*`")
)

// anchorsOf collects the GitHub anchors of every heading in a file.
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	anchors := map[string]bool{}
	seen := map[string]int{}
	for _, m := range mdHeadingRe.FindAllStringSubmatch(string(raw), -1) {
		slug := githubSlug(m[1])
		if n := seen[slug]; n > 0 {
			anchors[slug+"-"+string(rune('0'+n))] = true
		} else {
			anchors[slug] = true
		}
		seen[slug]++
	}
	return anchors
}

// TestMarkdownLinksResolve verifies every relative markdown link: the
// target file must exist, and a #fragment must match a heading anchor in
// the target (or, for bare #fragments, the current file).
func TestMarkdownLinksResolve(t *testing.T) {
	for _, file := range mdFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		// Links inside code spans/fences are not links.
		content := mdCodeRe.ReplaceAllString(string(raw), "")
		for _, m := range mdLinkRe.FindAllStringSubmatch(content, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			pathPart, frag, hasFrag := strings.Cut(target, "#")
			resolved := file
			if pathPart != "" {
				resolved = filepath.Join(filepath.Dir(file), pathPart)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q (%s does not exist)", file, target, resolved)
					continue
				}
			}
			if hasFrag && strings.HasSuffix(strings.ToLower(resolved), ".md") {
				if !anchorsOf(t, resolved)[frag] {
					t.Errorf("%s: link %q points at missing anchor #%s in %s", file, target, frag, resolved)
				}
			}
		}
	}
}
