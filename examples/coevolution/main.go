// Coevolution: the closed attacker–defender loop (internal/experiment).
// Four attacks on route discovery and interception — a static
// eavesdropper, an adaptive tap that re-positions toward observed
// traffic, an out-of-band wormhole, and a rushing attacker — play
// iterated best response against an escalating defender: the undefended
// baseline, data shuffling, and per-neighbour trust scores folded into
// path selection. Each round the attacker picks the strategy that
// minimises the defender's score (delivery − intercepted contiguity)
// against the incumbent defence, then the defender best-responds to the
// new attack; the game ends at a pure-strategy fixed point of the
// empirical payoff matrix.
//
// What to look for: the wormhole row collapses the undefended column —
// tunnelled control traffic keeps a phantom path looking fresh while
// every data packet routed into it dies at the near endpoint. The trust
// column restores delivery against exactly that attack (watchdogs
// distrust the non-forwarding endpoint and selection routes around it),
// which is why the game settles where it does. Everything below is
// deterministic: same seeds, same table, byte for byte.
package main

import (
	"fmt"
	"log"

	"mtsim"
)

func main() {
	cfg := mtsim.DefaultConfig()
	cfg.Duration = 30 * mtsim.Second
	cfg.Protocol = "MTS"

	game := mtsim.Coevolution{
		Base:  cfg,
		Speed: 10,
		Attackers: []mtsim.AdversarySpec{
			{Model: mtsim.AdversaryEavesdropper},
			{Model: mtsim.AdversaryAdaptive, K: 3, Interval: 2 * mtsim.Second},
			{Model: mtsim.AdversaryWormhole},
			{Model: mtsim.AdversaryRushing, K: 2},
		},
		Defenders: []mtsim.CountermeasureSpec{
			{},
			{Model: mtsim.CountermeasureShuffle},
			{Model: mtsim.CountermeasureTrust},
		},
		Reps:     1,
		SeedBase: 5,
	}
	res, err := game.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.PayoffTable())
	fmt.Println()
	fmt.Print(res.History())
}
