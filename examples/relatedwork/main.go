// Relatedwork: reproduce the observation from the paper's §II that
// motivates MTS's design. Lim, Xu & Gerla (ICC 2003) found that splitting
// a TCP flow concurrently over multiple paths — as SMR does — performs
// WORSE than a single path, because out-of-order arrivals masquerade as
// loss and trigger unnecessary congestion control. MTS therefore keeps a
// single active route and only *switches* it. This example runs the same
// mobile scenario under SMR (split), SMR-BACKUP (primary + standby), MTS
// and AODV and compares the TCP outcomes.
package main

import (
	"fmt"
	"log"

	"mtsim"
)

func main() {
	fmt.Println("identical mobile scenario (seed 3, 10 m/s, 90 s) under four protocols:")
	fmt.Println()
	fmt.Printf("%-11s %12s %10s %12s %10s\n",
		"protocol", "throughput", "delay", "retransmits", "timeouts")
	for _, proto := range []string{"SMR", "SMR-BACKUP", "AODV", "MTS"} {
		cfg := mtsim.DefaultConfig()
		cfg.Protocol = proto
		cfg.MaxSpeed = 10
		cfg.Duration = 90 * mtsim.Second
		cfg.Seed = 3
		m, err := mtsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %9.1f pps %7.0f ms %12d %10d\n",
			proto, m.ThroughputPps, m.AvgDelaySec*1000, m.Retransmits, m.Timeouts)
	}
	fmt.Println()
	fmt.Println("SMR's concurrent splitting reorders segments and inflates retransmits;")
	fmt.Println("MTS keeps one active route and switches it on checking rounds instead.")
}
