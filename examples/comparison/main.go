// Comparison: a miniature version of the paper's full evaluation — the
// three protocols swept over node speed, rendering two of the figures
// (participating nodes, Fig. 5, and TCP throughput, Fig. 9) as tables.
// The full 200-second, five-repetition reproduction is cmd/experiments.
package main

import (
	"fmt"
	"log"

	"mtsim"
)

func main() {
	base := mtsim.DefaultConfig()
	base.Duration = 60 * mtsim.Second

	sweep := mtsim.PaperSweep(base)
	sweep.Speeds = []float64{2, 10, 20}
	sweep.Reps = 3

	fmt.Printf("running %d simulations...\n\n",
		len(sweep.Protocols)*len(sweep.Speeds)*sweep.Reps)
	res, err := sweep.Run()
	if err != nil {
		log.Fatal(err)
	}

	for _, id := range []string{"fig5", "fig9"} {
		fig, _ := mtsim.FigureByID(id)
		fmt.Println(res.Table(fig))
		fmt.Println("paper:", fig.Expect)
		fmt.Println()
	}
}
