// Quickstart: run one simulation of the paper's default scenario (50
// mobile nodes, one FTP/TCP-Reno flow, one eavesdropper) with the MTS
// protocol and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"mtsim"
)

func main() {
	cfg := mtsim.DefaultConfig() // the paper's §IV-A setup
	cfg.Protocol = "MTS"
	cfg.MaxSpeed = 10 // m/s
	cfg.Duration = 60 * mtsim.Second
	cfg.Seed = 42

	m, err := mtsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MTS, 60 simulated seconds at max speed %g m/s (seed %d)\n\n", cfg.MaxSpeed, cfg.Seed)
	fmt.Printf("  TCP throughput        %.1f pkt/s (%.0f kb/s)\n", m.ThroughputPps, m.ThroughputKbps)
	fmt.Printf("  average delay         %.1f ms\n", m.AvgDelaySec*1000)
	fmt.Printf("  delivery rate         %.1f %%\n", m.DeliveryRate*100)
	fmt.Printf("  participating nodes   %d\n", m.Participating)
	fmt.Printf("  interception ratio    %.3f (eavesdropper: node %d)\n",
		m.InterceptionRatio, m.EavesdropperID)
	fmt.Printf("  worst-case interception %.3f\n", m.HighestInterception)
	fmt.Printf("  control overhead      %d routing packets\n", m.ControlPkts)
	fmt.Printf("  path switches         %d (over %d checking rounds)\n",
		m.Extra["switches"], m.Extra["checks"])
}
