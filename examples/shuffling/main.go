// Shuffling: the defender-vs-attacker demo (internal/countermeasure).
// A coalition of two colluding eavesdroppers taps an identical MTS
// scenario (same seed ⇒ same mobility, endpoints and taps) while the
// defence escalates from the paper's undefended baseline through data
// shuffling, adversary-aware path selection, and both combined.
//
// What to look for: undefended TCP hands any tap a long in-order run of
// consecutive segments — a readable byte stream (stream ratio near 1).
// Data shuffling releases segments in permuted blocks and disperses them
// across MTS's disjoint paths, so what the coalition hears fragments into
// streaks a few packets long (stream bytes collapse) while the delivery
// rate stays put — the countermeasure starves the attacker of contiguous
// plaintext, not the destination of data. The aware policy instead caps
// how much of the flow any one relay carries, trimming the worst-case
// exposure without touching packet order.
package main

import (
	"fmt"
	"log"

	"mtsim"
)

func main() {
	defences := []struct {
		name string
		spec mtsim.CountermeasureSpec
	}{
		{"none", mtsim.CountermeasureSpec{}},
		{"shuffle", mtsim.CountermeasureSpec{Model: mtsim.CountermeasureShuffle}},
		{"aware", mtsim.CountermeasureSpec{Model: mtsim.CountermeasureAware}},
		{"shuffle+aware", mtsim.CountermeasureSpec{Model: mtsim.CountermeasureShuffleAware}},
	}

	fmt.Println("MTS vs a coalition of 2 eavesdroppers (seed 7, 10 m/s, 60 s),")
	fmt.Println("defence escalating (identical scenario bits otherwise):")
	fmt.Println()
	fmt.Printf("%-14s %6s %7s %10s %12s %12s %7s %9s %9s\n",
		"defence", "Pe", "Ri", "streamRun", "streamBytes", "streamRatio", "worst", "delivery", "shuffled")
	for _, d := range defences {
		cfg := mtsim.DefaultConfig()
		cfg.Protocol = "MTS"
		cfg.MaxSpeed = 10
		cfg.Duration = 60 * mtsim.Second
		cfg.Seed = 7
		cfg.Adversary = mtsim.AdversarySpec{Model: mtsim.AdversaryCoalition, K: 2}
		cfg.Countermeasure = d.spec
		m, err := mtsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %6d %7.3f %10d %12d %12.3f %7.3f %9.3f %9d\n",
			d.name, m.CoalitionDistinct, m.InterceptionRatio,
			m.InterceptedStreamRun, m.InterceptedStreamBytes,
			m.InterceptedStreamRatio, m.HighestInterception, m.DeliveryRate, m.ShuffledSegments)
	}

	fmt.Println()
	fmt.Println("same grid against a single mobile eavesdropper re-tapping every 5 s:")
	fmt.Println()
	fmt.Printf("%-14s %6s %7s %10s %12s %12s %7s %9s\n",
		"defence", "Pe", "Ri", "streamRun", "streamBytes", "streamRatio", "worst", "delivery")
	for _, d := range defences {
		cfg := mtsim.DefaultConfig()
		cfg.Protocol = "MTS"
		cfg.MaxSpeed = 10
		cfg.Duration = 60 * mtsim.Second
		cfg.Seed = 7
		cfg.Adversary = mtsim.AdversarySpec{Model: mtsim.AdversaryMobile, K: 4, Interval: 5 * mtsim.Second}
		cfg.Countermeasure = d.spec
		m, err := mtsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %6d %7.3f %10d %12d %12.3f %7.3f %9.3f\n",
			d.name, m.CoalitionDistinct, m.InterceptionRatio,
			m.InterceptedStreamRun, m.InterceptedStreamBytes,
			m.InterceptedStreamRatio, m.HighestInterception, m.DeliveryRate)
	}
}
