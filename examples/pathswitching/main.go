// Pathswitching: watch MTS's distinguishing mechanism live. The example
// builds the paper's mobile scenario, then samples the source's current
// path and the destination's stored disjoint-path set every two seconds of
// virtual time, printing a timeline of route checking, best-route switching
// and discovery flushes (§III-D/E of the paper).
package main

import (
	"fmt"
	"log"

	"mtsim"
	"mtsim/internal/core"
)

func main() {
	cfg := mtsim.DefaultConfig()
	cfg.Protocol = "MTS"
	cfg.MaxSpeed = 10
	cfg.Duration = 60 * mtsim.Second
	cfg.Seed = 2

	s, err := mtsim.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	src, dst := s.Flows[0].Src, s.Flows[0].Dst
	srcRouter := s.Nodes[src].Proto.(*core.Router)
	dstRouter := s.Nodes[dst].Proto.(*core.Router)

	fmt.Printf("flow: node %d -> node %d; eavesdropper: node %d\n\n", src, dst, s.Eaves.ID)
	fmt.Printf("%5s %9s %6s %6s %7s %8s %9s %9s\n",
		"t(s)", "delivered", "path", "next", "live", "stored", "switches", "checks")

	var lastDelivered uint64
	prevPath := -1
	for t := mtsim.Duration(0); t <= cfg.Duration; t += 2 * mtsim.Second {
		s.Sched.RunUntil(mtsim.Time(t))
		delivered := s.Sinks[0].Stats.Distinct
		pathID, next, ok := srcRouter.CurrentPath(dst)
		marker := ""
		if ok && pathID != prevPath && prevPath >= 0 {
			marker = "  <- switched"
		}
		if ok {
			prevPath = pathID
		}
		fmt.Printf("%5.0f %9d %6d %6d %7d %8d %9d %9d%s\n",
			mtsim.Time(t).Seconds(), delivered-lastDelivered, pathID, next,
			srcRouter.LivePathCount(dst), len(dstRouter.StoredPaths(src)),
			srcRouter.Stats.Switches, dstRouter.Stats.ChecksSent, marker)
		lastDelivered = delivered
	}

	m := s.Gather()
	fmt.Printf("\ntotal: %.1f pkt/s, delay %.1f ms, %d discoveries, %d path switches\n",
		m.ThroughputPps, m.AvgDelaySec*1000, m.Extra["discoveries"], m.Extra["switches"])
}
