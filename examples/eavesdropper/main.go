// Eavesdropper: the paper's core security claim, §IV-B. One randomly
// chosen intermediate node passively collects every TCP data packet it can
// decode. Running the identical scenario (same seed ⇒ same mobility, same
// endpoints, same eavesdropper) under DSR, AODV and MTS shows how multipath
// spreading starves the eavesdropper: MTS yields the most participating
// relays, the most even relay distribution (Eq. 4) and the lowest
// worst-case interception ratio (Eq. 1).
//
// The second half escalates the threat model (internal/adversary): a
// coalition of k colluding eavesdroppers pools everything its members
// hear, so the coalition's Pe is the union of distinct payloads. Multipath
// spreading still helps — the union grows sublinearly because disjoint
// paths give each extra tap mostly traffic another tap already saw — but
// no routing policy can starve a large enough coalition.
package main

import (
	"fmt"
	"log"

	"mtsim"
)

func main() {
	fmt.Println("identical scenario under three protocols (seed 7, 15 m/s, 120 s):")
	fmt.Println()
	fmt.Printf("%-6s %14s %12s %14s %12s\n",
		"proto", "participating", "relay σ", "interception", "worst-case")
	for _, proto := range mtsim.Protocols() {
		cfg := mtsim.DefaultConfig()
		cfg.Protocol = proto
		cfg.MaxSpeed = 15
		cfg.Duration = 120 * mtsim.Second
		cfg.Seed = 7
		m, err := mtsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %14d %12.4f %14.3f %12.3f\n",
			proto, m.Participating, m.RelayStdDev, m.InterceptionRatio, m.HighestInterception)
	}
	fmt.Println()
	fmt.Println("Table I-style relay normalization for the DSR run:")
	cfg := mtsim.DefaultConfig()
	cfg.MaxSpeed = 15
	cfg.Duration = 120 * mtsim.Second
	out, err := mtsim.Table1(cfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	fmt.Println()
	fmt.Println("coalition of k colluding eavesdroppers (union Pe, same scenario):")
	fmt.Println()
	fmt.Printf("%-6s %4s %12s %12s %14s\n", "proto", "k", "union Pe", "coalition Ri", "member taps")
	for _, proto := range mtsim.Protocols() {
		for _, k := range []int{1, 2, 4} {
			cfg := mtsim.DefaultConfig()
			cfg.Protocol = proto
			cfg.MaxSpeed = 15
			cfg.Duration = 120 * mtsim.Second
			cfg.Seed = 7
			cfg.Adversary = mtsim.AdversarySpec{Model: mtsim.AdversaryCoalition, K: k}
			m, err := mtsim.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			taps := ""
			for i, mem := range m.AdversaryMembers {
				if i > 0 {
					taps += " "
				}
				taps += fmt.Sprintf("%d:%d", mem.Node, mem.Distinct)
			}
			fmt.Printf("%-6s %4d %12d %12.3f   %s\n",
				proto, k, m.CoalitionDistinct, m.InterceptionRatio, taps)
		}
	}
}
