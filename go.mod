module mtsim

go 1.24
