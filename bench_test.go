// Benchmarks regenerating the paper's evaluation artefacts. One benchmark
// per table/figure: each logs the aggregated series for its figure (from a
// shared reduced sweep — the full-length reproduction is cmd/experiments)
// and measures the cost of the representative simulation behind it.
// Ablation benchmarks cover the design choices DESIGN.md calls out: the
// checking period, the stored-path bound, best-route switching, RTS/CTS,
// and AODV's expanding ring.
package mtsim

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"mtsim/internal/scenario"
)

// benchSweep is the shared reduced grid behind the figure benchmarks:
// 3 protocols × {2,10,20} m/s × 2 repetitions at 20 simulated seconds.
var (
	benchOnce   sync.Once
	benchResult *Result
	benchErr    error
)

func benchBase() Config {
	cfg := DefaultConfig()
	cfg.Duration = 20 * Second
	cfg.TCPStart = Time(2 * Second)
	return cfg
}

func sharedSweep(b *testing.B) *Result {
	benchOnce.Do(func() {
		sw := PaperSweep(benchBase())
		sw.Speeds = []float64{2, 10, 20}
		sw.Reps = 2
		benchResult, benchErr = sw.Run()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchResult
}

// benchFigure logs the figure's series once, then measures one
// representative MTS run per iteration, reporting the figure's metric.
func benchFigure(b *testing.B, figID string) {
	res := sharedSweep(b)
	fig, ok := FigureByID(figID)
	if !ok {
		b.Fatalf("unknown figure %s", figID)
	}
	b.Logf("\n%s\npaper: %s", res.Table(fig), fig.Expect)

	cfg := benchBase()
	cfg.Protocol = "MTS"
	cfg.MaxSpeed = 10
	var acc float64
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		m, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		acc += fig.Metric(m)
		events += m.EventsRun
	}
	unit := strings.ReplaceAll(fig.Unit, " ", "_") + "/run"
	b.ReportMetric(acc/float64(b.N), unit)
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

func BenchmarkTable1RelayNormalization(b *testing.B) {
	cfg := benchBase()
	var out string
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = Table1(cfg, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", out)
}

func BenchmarkFigure5ParticipatingNodes(b *testing.B)  { benchFigure(b, "fig5") }
func BenchmarkFigure6RelayStdDev(b *testing.B)         { benchFigure(b, "fig6") }
func BenchmarkFigure7HighestInterception(b *testing.B) { benchFigure(b, "fig7") }
func BenchmarkFigure8Delay(b *testing.B)               { benchFigure(b, "fig8") }
func BenchmarkFigure9Throughput(b *testing.B)          { benchFigure(b, "fig9") }
func BenchmarkFigure10DeliveryRate(b *testing.B)       { benchFigure(b, "fig10") }
func BenchmarkFigure11ControlOverhead(b *testing.B)    { benchFigure(b, "fig11") }

// --- ablations ---

// ablationRow runs a single configuration n times (different seeds) and
// returns mean throughput and worst-case interception.
func ablationRow(b *testing.B, cfg Config, runs int) (tput, intercept float64) {
	for r := 0; r < runs; r++ {
		cfg.Seed = int64(r + 1)
		m, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tput += m.ThroughputPps
		intercept += m.HighestInterception
	}
	return tput / float64(runs), intercept / float64(runs)
}

var ablationOnce sync.Once

// BenchmarkAblationCheckPeriod sweeps the MTS route-checking period (the
// paper recommends 2–4 s, §III-D).
func BenchmarkAblationCheckPeriod(b *testing.B) {
	ablationOnce.Do(func() {}) // reserved: keeps ablation set extensible
	var table string
	for _, sec := range []float64{1, 2, 3, 4, 8} {
		cfg := benchBase()
		cfg.Protocol = "MTS"
		cfg.MaxSpeed = 10
		cfg.MTS.CheckPeriod = Seconds(sec)
		tput, ic := ablationRow(b, cfg, 2)
		table += fmt.Sprintf("  Tcheck=%4.0fs  throughput=%7.1f pkt/s  worst-case interception=%.3f\n", sec, tput, ic)
	}
	b.Logf("\nMTS checking-period ablation (10 m/s):\n%s", table)
	cfg := benchBase()
	cfg.Protocol = "MTS"
	cfg.MaxSpeed = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMaxPaths sweeps the stored disjoint-path bound (the
// paper fixes five, §III-B).
func BenchmarkAblationMaxPaths(b *testing.B) {
	var table string
	for _, k := range []int{1, 2, 3, 5} {
		cfg := benchBase()
		cfg.Protocol = "MTS"
		cfg.MaxSpeed = 10
		cfg.MTS.MaxPaths = k
		tput, ic := ablationRow(b, cfg, 2)
		table += fmt.Sprintf("  maxpaths=%d  throughput=%7.1f pkt/s  worst-case interception=%.3f\n", k, tput, ic)
	}
	b.Logf("\nMTS stored-path bound ablation (10 m/s):\n%s", table)
	cfg := benchBase()
	cfg.Protocol = "MTS"
	cfg.MaxSpeed = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoSwitching isolates MTS's first contribution: with
// SwitchOnCheck disabled the protocol degrades to a backup-path scheme
// (switching only after failures), which should concentrate traffic and
// raise the interception metrics.
func BenchmarkAblationNoSwitching(b *testing.B) {
	var table string
	for _, on := range []bool{true, false} {
		cfg := benchBase()
		cfg.Protocol = "MTS"
		cfg.MaxSpeed = 10
		cfg.MTS.SwitchOnCheck = on
		tput, ic := ablationRow(b, cfg, 3)
		table += fmt.Sprintf("  switching=%-5v  throughput=%7.1f pkt/s  worst-case interception=%.3f\n", on, tput, ic)
	}
	b.Logf("\nMTS best-route switching ablation (10 m/s):\n%s", table)
	cfg := benchBase()
	cfg.Protocol = "MTS"
	cfg.MTS.SwitchOnCheck = false
	cfg.MaxSpeed = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRTSCTS compares the MAC with and without the RTS/CTS
// exchange (hidden-terminal protection vs handshake overhead).
func BenchmarkAblationRTSCTS(b *testing.B) {
	var table string
	for _, on := range []bool{true, false} {
		cfg := benchBase()
		cfg.Protocol = "MTS"
		cfg.MaxSpeed = 10
		if !on {
			cfg.MAC.RTSThreshold = 1 << 30
		}
		tput, _ := ablationRow(b, cfg, 2)
		table += fmt.Sprintf("  rts/cts=%-5v  throughput=%7.1f pkt/s\n", on, tput)
	}
	b.Logf("\n802.11 RTS/CTS ablation (MTS, 10 m/s):\n%s", table)
	cfg := benchBase()
	cfg.Protocol = "MTS"
	cfg.MAC.RTSThreshold = 1 << 30
	cfg.MaxSpeed = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationExpandingRing compares AODV with draft-compliant
// expanding-ring search against immediate network-wide flooding.
func BenchmarkAblationExpandingRing(b *testing.B) {
	var table string
	for _, on := range []bool{true, false} {
		cfg := benchBase()
		cfg.Protocol = "AODV"
		cfg.MaxSpeed = 10
		cfg.AODV.ExpandingRing = on
		tput, _ := ablationRow(b, cfg, 2)
		table += fmt.Sprintf("  expanding-ring=%-5v  throughput=%7.1f pkt/s\n", on, tput)
	}
	b.Logf("\nAODV expanding-ring ablation (10 m/s):\n%s", table)
	cfg := benchBase()
	cfg.Protocol = "AODV"
	cfg.MaxSpeed = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelatedWorkProtocols compares MTS against the §II related-work
// schemes: SMR (concurrent split multipath — Lim et al. showed it hurts
// TCP) and SMR-BACKUP (one primary + standby). This regenerates the
// motivation behind the paper's single-active-route design.
func BenchmarkRelatedWorkProtocols(b *testing.B) {
	var table string
	for _, proto := range []string{"MTS", "SMR", "SMR-BACKUP", "AODV"} {
		cfg := benchBase()
		cfg.Protocol = proto
		cfg.MaxSpeed = 10
		tput, ic := ablationRow(b, cfg, 2)
		table += fmt.Sprintf("  %-11s throughput=%7.1f pkt/s  worst-case interception=%.3f\n", proto, tput, ic)
	}
	b.Logf("\nrelated-work comparison (10 m/s):\n%s", table)
	cfg := benchBase()
	cfg.Protocol = "SMR"
	cfg.MaxSpeed = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sweep engine ---

// sweepWallClockGrid is the reduced grid behind BenchmarkSweepWallClock:
// 2 protocols × 2 speeds × 2 reps at 20 simulated seconds (8 runs).
func sweepWallClockGrid(parallelism int, cache *RunCache) Sweep {
	sw := PaperSweep(benchBase())
	sw.Protocols = []string{"AODV", "MTS"}
	sw.Speeds = []float64{2, 10}
	sw.Reps = 2
	sw.Parallelism = parallelism
	sw.Cache = cache
	return sw
}

// BenchmarkSweepWallClock measures end-to-end sweep latency through the
// engine: cold (every cell simulated, cache being filled) vs warm (every
// cell served from the content-addressed cache), serially and on the full
// worker pool. The cold/warm ratio is the price of a repeated or resumed
// sweep; see PERFORMANCE.md for recorded numbers.
func BenchmarkSweepWallClock(b *testing.B) {
	for _, mode := range []struct {
		name        string
		parallelism int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run("cold/"+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cache, err := OpenRunCache(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := sweepWallClockGrid(mode.parallelism, cache).Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.CacheHits != 0 {
					b.Fatalf("cold sweep hit the cache %d times", res.CacheHits)
				}
			}
		})
		b.Run("warm/"+mode.name, func(b *testing.B) {
			cache, err := OpenRunCache(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sweepWallClockGrid(mode.parallelism, cache).Run(); err != nil {
				b.Fatal(err) // prime the cache
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sweepWallClockGrid(mode.parallelism, cache).Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.CacheMisses != 0 {
					b.Fatalf("warm sweep missed %d cells", res.CacheMisses)
				}
			}
		})
	}
}

// BenchmarkRunSetupReuse isolates the per-worker context reuse: the same
// simulation through a fresh Build every time vs through one RunContext
// that resets the scheduler/channel/grid scaffolding instead of
// reallocating it. The allocs/op delta is the scaffolding being recycled.
func BenchmarkRunSetupReuse(b *testing.B) {
	cfg := benchBase()
	cfg.Protocol = "MTS"
	cfg.MaxSpeed = 10
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg.Seed = int64(i + 1)
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("context", func(b *testing.B) {
		ctx := NewRunContext()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg.Seed = int64(i + 1)
			if _, err := ctx.RunOne(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScale1000Nodes is the control-plane arena's acceptance smoke:
// a 1000-node, 20-flow MTS run at the paper's node density, built through
// a reused context and executed under watchdog defaults (an unlimited
// Budget, exactly like the CLI). allocs/op here is the whole-run figure
// the PERFORMANCE.md "control-plane arena" table quotes at scale; a
// regression in router recycling shows up as this number scaling with
// node count again.
// The batched/unbatched split compares the arrival-batching win at scale:
// both modes simulate identical traffic (metrics are byte-identical apart
// from EventsRun), so the ns/op gap is pure scheduler pressure — ~40
// in-CS receivers per broadcast means the reference mode pays ~40× the
// heap inserts per transmission.
func BenchmarkScale1000Nodes(b *testing.B) {
	cfg := benchBase()
	cfg.Protocol = "MTS"
	cfg.MaxSpeed = 10
	cfg.Nodes = 1000
	side := 1000 * math.Sqrt(1000.0/50)
	cfg.Field = Field(side, side)
	cfg.Duration = 4 * Second
	cfg.TCPStart = Time(1 * Second)
	for i := 0; i < 20; i++ {
		cfg.Flows = append(cfg.Flows, FlowSpec{Src: NodeID(i), Dst: NodeID(500 + i)})
	}
	for _, unbatched := range []bool{false, true} {
		mode := "batched"
		if unbatched {
			mode = "unbatched"
		}
		b.Run(mode, func(b *testing.B) {
			ctx := NewRunContext()
			var events uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				s, err := ctx.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				s.Channel.UseUnbatchedArrivals(unbatched)
				m, err := s.RunWatched(scenario.Budget{})
				if err != nil {
					b.Fatal(err)
				}
				s.Retire()
				events += m.EventsRun
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkSimulatorEventRate measures the raw event-processing rate of
// the full stack at increasing node counts. The 50-node case is the
// paper's default scenario; the larger fields keep the same node density
// (the field area grows with the population) so neighbourhood size — and
// hence per-transmission work — stays realistic while total population
// grows.
func BenchmarkSimulatorEventRate(b *testing.B) {
	for _, nodes := range []int{50, 100, 200} {
		// The bare nodes=N name is the batched default — the series every
		// PERFORMANCE.md table tracks across PRs. nodes=N/unbatched runs the
		// same scenario through the per-receiver reference arrival path
		// (phy.UseUnbatchedArrivals), so the gap between the two rows is the
		// batching win on identical traffic. The reference mode runs more,
		// cheaper events, so compare wall-clock per simulated run (ns/op),
		// not events/sec.
		cfg := benchBase()
		cfg.Protocol = "MTS"
		cfg.MaxSpeed = 10
		cfg.Nodes = nodes
		// Constant density: the default is 50 nodes / 1000x1000 m.
		side := 1000 * math.Sqrt(float64(nodes)/50)
		cfg.Field = Field(side, side)
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var events uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				m, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				events += m.EventsRun
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
		b.Run(fmt.Sprintf("nodes=%d/unbatched", nodes), func(b *testing.B) {
			var events uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				s, err := Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				s.Channel.UseUnbatchedArrivals(true)
				events += s.Run().EventsRun
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}
