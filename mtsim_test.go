package mtsim

import (
	"strings"
	"testing"
)

func TestFacadeRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = "MTS"
	cfg.Nodes = 20
	cfg.Duration = 5 * Second
	cfg.TCPStart = Time(500 * Millisecond)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Protocol != "MTS" {
		t.Fatalf("protocol = %q", m.Protocol)
	}
	if m.EventsRun == 0 {
		t.Fatal("no events ran")
	}
}

func TestFacadeDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 50 {
		t.Fatalf("nodes = %d, want the paper's 50", cfg.Nodes)
	}
	if cfg.Duration != 200*Second {
		t.Fatalf("duration = %v, want the paper's 200s", cfg.Duration)
	}
	if cfg.Field.Width() != 1000 || cfg.Field.Height() != 1000 {
		t.Fatal("field is not 1000x1000")
	}
	if cfg.RxRange != 250 {
		t.Fatalf("radio range = %v, want 250", cfg.RxRange)
	}
	if got := Protocols(); len(got) != 3 {
		t.Fatalf("protocols = %v", got)
	}
}

func TestFacadeFigures(t *testing.T) {
	if len(PaperFigures()) != 7 {
		t.Fatal("figure definitions incomplete")
	}
	if _, ok := FigureByID("fig7"); !ok {
		t.Fatal("fig7 missing")
	}
}

func TestFacadeSweepAndTable1(t *testing.T) {
	base := DefaultConfig()
	base.Nodes = 15
	base.Duration = 4 * Second
	base.TCPStart = Time(500 * Millisecond)
	sw := PaperSweep(base)
	sw.Protocols = []string{"MTS"}
	sw.Speeds = []float64{5}
	sw.Reps = 1
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	fig, _ := FigureByID("fig9")
	if !strings.Contains(res.Table(fig), "MTS") {
		t.Fatal("table rendering broken")
	}

	out, err := Table1(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table I") {
		t.Fatal("Table1 rendering broken")
	}
}

func TestFacadeBuildInspection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 10
	cfg.Duration = 2 * Second
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 10 {
		t.Fatalf("nodes = %d", len(s.Nodes))
	}
	m := s.Run()
	if m == nil || m.Duration != cfg.Duration {
		t.Fatal("run metrics broken")
	}
}

func TestSecondsHelper(t *testing.T) {
	if Seconds(2.5) != 2500*Millisecond {
		t.Fatalf("Seconds(2.5) = %v", Seconds(2.5))
	}
}
